//! # parlogsim — Multilevel Partitioning for Parallel Logic Simulation
//!
//! A full-stack Rust reproduction of *"Study of a Multilevel Approach to
//! Partitioning for Parallel Logic Simulation"* (S. Subramanian, D. M.
//! Rao, P. A. Wilsey — IPPS 2000): an optimistic (Time Warp) parallel
//! gate-level logic simulator plus the six circuit partitioning strategies
//! the paper studies, with a benchmark harness that regenerates every
//! table and figure of its evaluation.
//!
//! The stack, bottom up:
//!
//! | Crate | Role (paper analog) |
//! |---|---|
//! | [`netlist`] | circuit graphs, ISCAS'89 `.bench` I/O, synthetic benchmarks (the elaborated design) |
//! | [`logic`] | four-valued signal logic, delays, stimulus (TYVIS semantics) |
//! | [`partition`] | Random / Topological / DFS / Cluster / Cone / **Multilevel** partitioners |
//! | [`timewarp`] | the Time Warp kernel: sequential, threaded and virtual-platform executives (WARPED) |
//! | [`gatesim`] | gates as logical processes + the experiment driver (TYVIS glue) |
//!
//! # Quickstart
//!
//! ```
//! use parlogsim::prelude::*;
//!
//! // A synthetic ISCAS'89-class circuit (use `bench_format::parse` for
//! // real .bench files).
//! let netlist = IscasSynth::small(200, 42).build();
//! let graph = CircuitGraph::from_netlist(&netlist);
//!
//! // Partition it 4 ways with the paper's multilevel heuristic.
//! let part = MultilevelPartitioner::default().partition(&graph, 4, 0);
//! let quality = parlogsim::partition::metrics::quality(&graph, &part);
//! assert!(quality.imbalance < 1.15);
//!
//! // Simulate on 4 virtual workstations and compare with sequential.
//! let cfg = SimConfig { end_time: 120, ..Default::default() };
//! let seq = run_seq_baseline(&netlist, &cfg);
//! let par = Cell::new(&netlist, &graph, &cfg).nodes(4).run_with(&part, "Multilevel");
//! assert_eq!(seq.events, par.events_committed);
//!
//! // Same run with the compiled gate-block engine: blocks are derived
//! // from the partitioning. Fewer kernel events flow (cone-internal
//! // edges are fused away), but the committed per-gate history — checked
//! // here against a compiled-mode sequential run — is identical.
//! let mut compiled_cfg = cfg.clone();
//! compiled_cfg.exec = ExecModel::CompiledBlocks(CompileOptions::default());
//! let fused =
//!     Cell::new(&netlist, &graph, &compiled_cfg).nodes(4).checked().run_with(&part, "Multilevel");
//! assert!(fused.events_committed < seq.events, "fused cones internalize events");
//! assert!(fused.ops_executed > 0);
//! ```

pub use pls_gatesim as gatesim;
pub use pls_logic as logic;
pub use pls_netlist as netlist;
pub use pls_partition as partition;
pub use pls_timewarp as timewarp;

/// The common imports for working with the full stack.
pub mod prelude {
    pub use pls_gatesim::{
        fingerprint, run_seq_baseline, BlockState, Cell, CompileOptions, CompiledSim, ExecModel,
        GateModel, GateMsg, GateSim, GateSimBuilder, GateState, ModelState, RunMetrics, SeqMetrics,
        SimConfig, UnknownExecModel,
    };
    pub use pls_logic::{eval_gate, DelayModel, StimulusConfig, Value};
    pub use pls_netlist::{
        bench_format, levelize, CircuitStats, ClockTreeSynth, GateId, GateKind, IscasSynth,
        Netlist, NetlistBuilder,
    };
    pub use pls_partition::{
        all_partitioners, metrics, partitioner_by_name, partitioner_names, plan_replication,
        CircuitGraph, ClusterPartitioner, ConePartitioner, DfsPartitioner, MultilevelPartitioner,
        Partitioner, Partitioning, RandomPartitioner, ReplicaPlan, ReplicatedPartitioner,
        ReplicationConfig, TopologicalPartitioner,
    };
    pub use pls_timewarp::{
        Application, Backend, Cancellation, CostModel, DynLbConfig, EventSink, KernelConfig,
        KernelStats, LpId, NoProbe, Outcome, PlatformConfig, Probe, RunReport, SimError, Simulator,
        TimeSeries, VTime,
    };
}
