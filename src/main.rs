//! `parlogsim` — command-line front end for the parallel logic simulation
//! stack: inspect circuits, generate synthetic benchmarks, partition,
//! simulate, and dump waveforms.

use std::process::exit;

use parlogsim::gatesim::{write_vcd, WaveRecorder};
use parlogsim::prelude::*;

/// `println!` that exits quietly when stdout closes early (`… | head`):
/// a CLI should end the pipeline, not panic on EPIPE.
macro_rules! out {
    ($($t:tt)*) => {{
        use std::io::Write;
        if writeln!(std::io::stdout(), $($t)*).is_err() {
            std::process::exit(0);
        }
    }};
}

/// `print!` variant of [`out!`].
macro_rules! outp {
    ($($t:tt)*) => {{
        use std::io::Write;
        if write!(std::io::stdout(), $($t)*).is_err() {
            std::process::exit(0);
        }
    }};
}

const USAGE: &str = "\
parlogsim — multilevel partitioning for parallel logic simulation

USAGE:
  parlogsim stats     <circuit>                       circuit characteristics (Table 1 row)
  parlogsim generate  <s5378|s9234|s15850|clocktree|N> [-o F]
                                                      synthetic benchmark to .bench
  parlogsim partition <circuit> [-k K] [-s STRAT] [--replicate]
                                                      partition and report quality
                                                      (--replicate also plans bounded logic
                                                       replication and reports the cut it leaves)
  parlogsim simulate  <circuit> [-k K] [-s STRAT] [--end T] [--dynlb]
                                [--exec MODE] [--replicate] [--trace F [--bucket W]]
                                                      Time Warp run vs sequential baseline
                                                      (--dynlb migrates LPs at GVT commit;
                                                       --exec gate-per-lp|compiled selects the
                                                       execution engine; --replicate duplicates
                                                       profitable boundary gates into reading
                                                       parts; --trace dumps a JSONL telemetry
                                                       series)
  parlogsim trace     <circuit> [-k K] [-s STRAT] [--end T] [--bucket W]
                                [--format jsonl|csv] [-o F]
                                                      virtual-time telemetry series
                                                      (table by default)
  parlogsim vcd       <circuit> [-o F] [--end T]      dump primary-output waveform as VCD
  parlogsim hotspots  <circuit> [-k K] [-s STRAT] [--end T]
                                                      per-gate rollback/load hotspots
  parlogsim dot       <circuit> [-k K] [-s STRAT] [-o F]
                                                      Graphviz view with partition colours

  <circuit> is a .bench file path, one of the built-in names
  (s27, c17, s5378, s9234, s15850), or `synth:N` for an N-gate synthetic.
  STRAT ∈ random|dfs|cluster|topological|multilevel|conepartition|replicated
  (default multilevel).
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        exit(2);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "stats" => cmd_stats(rest),
        "generate" => cmd_generate(rest),
        "partition" => cmd_partition(rest),
        "simulate" => cmd_simulate(rest),
        "trace" => cmd_trace(rest),
        "vcd" => cmd_vcd(rest),
        "hotspots" => cmd_hotspots(rest),
        "dot" => cmd_dot(rest),
        "-h" | "--help" | "help" => outp!("{USAGE}"),
        other => {
            eprintln!("unknown command `{other}`\n");
            eprint!("{USAGE}");
            exit(2);
        }
    }
}

/// Resolve a circuit argument: file path, built-in name, or `synth:N`.
fn load_circuit(spec: &str) -> Netlist {
    match spec {
        "s27" => return parlogsim::netlist::data::s27(),
        "c17" => return parlogsim::netlist::data::c17(),
        "s5378" => return IscasSynth::s5378().build(),
        "s9234" => return IscasSynth::s9234().build(),
        "s15850" => return IscasSynth::s15850().build(),
        _ => {}
    }
    if let Some(n) = spec.strip_prefix("synth:") {
        let gates: usize = n.parse().unwrap_or_else(|_| {
            eprintln!("bad synth size `{n}`");
            exit(2);
        });
        if gates == 0 {
            eprintln!("synth size must be >= 1");
            exit(2);
        }
        return IscasSynth::small(gates, 1).build();
    }
    let text = std::fs::read_to_string(spec).unwrap_or_else(|e| {
        eprintln!("cannot read `{spec}`: {e}");
        exit(1);
    });
    let name = std::path::Path::new(spec).file_stem().and_then(|s| s.to_str()).unwrap_or("circuit");
    bench_format::parse(name, &text).unwrap_or_else(|e| {
        eprintln!("parse error in `{spec}`: {e}");
        exit(1);
    })
}

fn flag<'a>(rest: &'a [String], name: &str) -> Option<&'a str> {
    rest.iter().position(|a| a == name).and_then(|i| rest.get(i + 1)).map(String::as_str)
}

/// Parse `-k` with a default; reject 0 with a clean error.
fn k_of(rest: &[String], default: usize) -> usize {
    let k = flag(rest, "-k").and_then(|v| v.parse().ok()).unwrap_or(default);
    if k == 0 {
        eprintln!("-k must be >= 1");
        exit(2);
    }
    k
}

fn required_circuit(rest: &[String]) -> Netlist {
    // First positional argument, skipping flags *and their values* so
    // `partition -k 4 s27` does not read "4" as the circuit.
    let mut i = 0;
    let mut spec: Option<&String> = None;
    while i < rest.len() {
        let a = &rest[i];
        if matches!(
            a.as_str(),
            "-k" | "-s" | "-o" | "--end" | "--trace" | "--bucket" | "--format" | "--exec"
        ) {
            i += 2;
            continue;
        }
        if !a.starts_with('-') {
            spec = Some(a);
            break;
        }
        i += 1;
    }
    let Some(spec) = spec else {
        eprintln!("missing circuit argument\n");
        eprint!("{USAGE}");
        exit(2);
    };
    load_circuit(spec)
}

fn strategy_of(rest: &[String]) -> Box<dyn Partitioner + Send + Sync> {
    let name = flag(rest, "-s").unwrap_or("multilevel");
    partitioner_by_name(name).unwrap_or_else(|| {
        let valid: Vec<String> = partitioner_names().iter().map(|n| n.to_lowercase()).collect();
        eprintln!("unknown strategy `{name}` (valid: {})", valid.join("|"));
        exit(2);
    })
}

fn cmd_stats(rest: &[String]) {
    let netlist = required_circuit(rest);
    let s = CircuitStats::of(&netlist);
    out!("circuit:    {}", s.name);
    out!("inputs:     {}", s.inputs);
    out!("gates:      {}", s.gates);
    out!("outputs:    {}", s.outputs);
    out!("flip-flops: {}", s.dffs);
    out!("edges:      {}", s.edges);
    out!("depth:      {}", s.depth);
    out!("avg fanout: {:.2}", s.avg_fanout);
    out!("max fanout: {}", s.max_fanout);
    out!("avg fanin:  {:.2}", s.avg_fanin);
    out!("gate mix:");
    for (kind, count) in &s.kind_histogram {
        if *count > 0 {
            out!("  {:<6} {}", kind.bench_name(), count);
        }
    }
}

fn cmd_generate(rest: &[String]) {
    let Some(spec) = rest.iter().find(|a| !a.starts_with('-')) else {
        eprintln!("generate needs a profile (s5378|s9234|s15850|clocktree|N)");
        exit(2);
    };
    let netlist = match spec.as_str() {
        "s5378" => IscasSynth::s5378().build(),
        "s9234" => IscasSynth::s9234().build(),
        "s15850" => IscasSynth::s15850().build(),
        "clocktree" => ClockTreeSynth::platform_demo().build(),
        n => match n.parse::<usize>() {
            Ok(gates) if gates >= 1 => IscasSynth::small(gates, 1).build(),
            _ => {
                eprintln!(
                    "bad profile `{n}` (need s5378|s9234|s15850|clocktree or a gate count >= 1)"
                );
                exit(2);
            }
        },
    };
    let text = bench_format::write(&netlist);
    match flag(rest, "-o") {
        Some(path) => {
            std::fs::write(path, text).unwrap_or_else(|e| {
                eprintln!("cannot write `{path}`: {e}");
                exit(1);
            });
            eprintln!("wrote {} ({} gates) to {path}", netlist.name(), netlist.len());
        }
        None => outp!("{text}"),
    }
}

fn cmd_partition(rest: &[String]) {
    let netlist = required_circuit(rest);
    let k = k_of(rest, 8);
    let strategy = strategy_of(rest);
    let graph = CircuitGraph::from_netlist(&netlist);
    let t0 = std::time::Instant::now();
    let part = strategy.partition(&graph, k, 0);
    let took = t0.elapsed();
    let q = metrics::quality(&graph, &part);
    out!("{} / {} into {k} partitions ({took:?})", netlist.name(), strategy.name());
    out!("edge cut:    {}", q.edge_cut);
    out!("λ−1 cut:     {}", q.connectivity_cut);
    out!("cut nets:    {}", q.cut_nets);
    out!("imbalance:   {:.3}", q.imbalance);
    if let Some(c) = q.concurrency {
        out!("concurrency: {c:.2}");
    }
    out!("sizes:       {:?}", part.sizes());
    if rest.iter().any(|a| a == "--replicate") {
        let plan = plan_replication(&graph, &part, &ReplicationConfig::default());
        out!(
            "replication: {} replicas, cut {} -> {} (est. {} pins/toggle saved)",
            plan.len(),
            q.edge_cut,
            parlogsim::partition::replicate::replicated_edge_cut(&graph, &part, &plan),
            plan.est_messages_saved
        );
    }
}

/// Parse `--bucket`, defaulting to 1/20th of the horizon (≥ 1).
fn bucket_of(rest: &[String], end: u64) -> u64 {
    let w =
        flag(rest, "--bucket").and_then(|v| v.parse().ok()).unwrap_or_else(|| (end / 20).max(1));
    if w == 0 {
        eprintln!("--bucket must be >= 1");
        exit(2);
    }
    w
}

/// Parse `--exec` into an [`ExecModel`]; exits with the valid names on a
/// bad value.
fn exec_of(rest: &[String]) -> ExecModel {
    match flag(rest, "--exec") {
        None => ExecModel::default(),
        Some(name) => name.parse().unwrap_or_else(|e: UnknownExecModel| {
            eprintln!("{e}");
            exit(2);
        }),
    }
}

fn cmd_simulate(rest: &[String]) {
    let netlist = required_circuit(rest);
    let k = k_of(rest, 8);
    let end: u64 = flag(rest, "--end").and_then(|v| v.parse().ok()).unwrap_or(400);
    let strategy = strategy_of(rest);
    let graph = CircuitGraph::from_netlist(&netlist);
    let mut cfg = SimConfig { end_time: end, ..Default::default() };
    cfg.exec = exec_of(rest);
    if rest.iter().any(|a| a == "--dynlb") {
        cfg.dynlb = Some(DynLbConfig::default());
    }
    if rest.iter().any(|a| a == "--replicate") {
        cfg.replication = Some(ReplicationConfig::default());
    }
    let seq = run_seq_baseline(&netlist, &cfg);
    out!("sequential: {} events, {:.3} modeled s", seq.events, seq.exec_time_s);
    let trace_path = flag(rest, "--trace");
    let bucket = trace_path.map(|_| bucket_of(rest, end));
    let part = strategy.partition(&graph, k, 0);
    let mut cell = Cell::new(&netlist, &graph, &cfg).nodes(k);
    if let Some(w) = bucket {
        cell = cell.record(w);
    }
    let m = cell.run_with(&part, strategy.name());
    if m.out_of_memory {
        out!("{} on {k} nodes: OUT OF MEMORY", m.strategy);
        exit(1);
    }
    let dynlb_note =
        if cfg.dynlb.is_some() { format!(", {} migrations", m.migrations) } else { String::new() };
    let exec_note = if m.block_activations > 0 {
        format!(", {} block activations, {} ops", m.block_activations, m.ops_executed)
    } else {
        String::new()
    };
    let rep_note = if m.replicated_gates > 0 {
        format!(", {} replicas saved {} messages", m.replicated_gates, m.messages_saved)
    } else {
        String::new()
    };
    out!(
        "{} on {k} nodes ({}): {:.3} modeled s ({:.2}x), {} messages, {} rollbacks, \
         efficiency {:.0}%{}{}{}",
        m.strategy,
        cfg.exec,
        m.exec_time_s,
        seq.exec_time_s / m.exec_time_s,
        m.app_messages,
        m.rollbacks,
        100.0 * m.events_committed as f64 / m.events_processed as f64,
        exec_note,
        rep_note,
        dynlb_note
    );
    if let Some(path) = trace_path {
        let series = m.telemetry.expect("recording was requested");
        std::fs::write(path, series.to_jsonl()).unwrap_or_else(|e| {
            eprintln!("cannot write `{path}`: {e}");
            exit(1);
        });
        eprintln!(
            "wrote {} telemetry buckets (width {}) to {path}",
            series.len(),
            series.bucket_width()
        );
    }
}

fn cmd_trace(rest: &[String]) {
    let netlist = required_circuit(rest);
    let k = k_of(rest, 8);
    let end: u64 = flag(rest, "--end").and_then(|v| v.parse().ok()).unwrap_or(400);
    let bucket = bucket_of(rest, end);
    let strategy = strategy_of(rest);
    let graph = CircuitGraph::from_netlist(&netlist);
    let cfg = SimConfig { end_time: end, ..Default::default() };
    let part = strategy.partition(&graph, k, 0);
    let m =
        Cell::new(&netlist, &graph, &cfg).nodes(k).record(bucket).run_with(&part, strategy.name());
    if m.out_of_memory {
        eprintln!("{} on {k} nodes: OUT OF MEMORY", m.strategy);
        exit(1);
    }
    let series = m.telemetry.clone().expect("recording was requested");
    let format = flag(rest, "--format");
    let rendered = match format {
        Some("jsonl") => series.to_jsonl(),
        Some("csv") => series.to_csv(),
        Some(other) => {
            eprintln!("unknown format `{other}` (jsonl|csv)");
            exit(2);
        }
        None => {
            // Human-readable table.
            let mut s = format!(
                "{} / {} on {k} nodes, bucket width {} vt\n",
                netlist.name(),
                m.strategy,
                series.bucket_width()
            );
            s.push_str(&format!(
                "{:>10} {:>8} {:>9} {:>7} {:>9} {:>9} {:>9} {:>8}\n",
                "vt", "events", "committed", "rollbk", "antis", "messages", "states", "pending"
            ));
            for (key, b) in series.buckets() {
                let vt = match key {
                    parlogsim::timewarp::BucketKey::At(i) => {
                        format!("{}", i * series.bucket_width())
                    }
                    parlogsim::timewarp::BucketKey::Final => "final".to_string(),
                };
                s.push_str(&format!(
                    "{:>10} {:>8} {:>9} {:>7} {:>9} {:>9} {:>9} {:>8}\n",
                    vt,
                    b.events,
                    b.events_committed,
                    b.rollbacks(),
                    b.antis_sent,
                    b.app_messages,
                    b.states_saved,
                    b.pending_max
                ));
            }
            let t = series.totals();
            s.push_str(&format!(
                "{:>10} {:>8} {:>9} {:>7} {:>9} {:>9} {:>9} {:>8}\n",
                "total",
                t.events,
                t.events_committed,
                t.rollbacks(),
                t.antis_sent,
                t.app_messages,
                t.states_saved,
                ""
            ));
            s
        }
    };
    match flag(rest, "-o") {
        Some(path) => {
            std::fs::write(path, rendered).unwrap_or_else(|e| {
                eprintln!("cannot write `{path}`: {e}");
                exit(1);
            });
            eprintln!("wrote {} buckets to {path}", series.len());
        }
        None => outp!("{rendered}"),
    }
}

fn cmd_hotspots(rest: &[String]) {
    let netlist = required_circuit(rest);
    let k = k_of(rest, 8);
    let end: u64 = flag(rest, "--end").and_then(|v| v.parse().ok()).unwrap_or(400);
    let strategy = strategy_of(rest);
    let graph = CircuitGraph::from_netlist(&netlist);
    let part = strategy.partition(&graph, k, 0);
    let cfg = SimConfig { end_time: end, ..Default::default() };
    let app = cfg.build_app(&netlist);
    let res = Simulator::new(&app)
        .platform_config(&cfg.platform)
        .run(Backend::Platform { assignment: &part.assignment, nodes: k })
        .unwrap_or_else(|e| {
            eprintln!("run failed: {e}");
            exit(1);
        });
    out!(
        "{} / {} on {k} nodes: {} rollbacks total; top offenders:",
        netlist.name(),
        strategy.name(),
        res.stats.rollbacks()
    );
    let mut by_rollbacks: Vec<(u32, parlogsim::timewarp::LpCounters)> =
        res.lp_stats.iter().enumerate().map(|(i, &c)| (i as u32, c)).collect();
    by_rollbacks.sort_by_key(|&(_, c)| std::cmp::Reverse((c.rollbacks, c.events_rolled_back)));
    out!(
        "{:<16} {:<6} {:>4} {:>10} {:>8} {:>8}",
        "gate",
        "kind",
        "part",
        "rollbacks",
        "undone",
        "events"
    );
    for (lp, c) in by_rollbacks.iter().take(15) {
        if c.rollbacks == 0 {
            break;
        }
        let g = netlist.gate(*lp);
        out!(
            "{:<16} {:<6} {:>4} {:>10} {:>8} {:>8}",
            g.name,
            g.kind.bench_name(),
            part.part(*lp),
            c.rollbacks,
            c.events_rolled_back,
            c.events_processed
        );
    }
}

fn cmd_dot(rest: &[String]) {
    let netlist = required_circuit(rest);
    let k = k_of(rest, 4);
    let strategy = strategy_of(rest);
    let graph = CircuitGraph::from_netlist(&netlist);
    let part = strategy.partition(&graph, k, 0);
    let names: Vec<String> = netlist.gates().iter().map(|g| g.name.clone()).collect();
    let dot = parlogsim::partition::to_dot(&graph, Some(&part), Some(&names));
    match flag(rest, "-o") {
        Some(path) => {
            std::fs::write(path, dot).unwrap_or_else(|e| {
                eprintln!("cannot write `{path}`: {e}");
                exit(1);
            });
            eprintln!("wrote DOT for {} ({} gates) to {path}", netlist.name(), netlist.len());
        }
        None => outp!("{dot}"),
    }
}

fn cmd_vcd(rest: &[String]) {
    let netlist = required_circuit(rest);
    let end: u64 = flag(rest, "--end").and_then(|v| v.parse().ok()).unwrap_or(400);
    let cfg = SimConfig { end_time: end, ..Default::default() };
    // Waveforms are per-gate by construction: always record the per-gate
    // engine (identical committed history either way).
    let app = cfg.build_gate_sim(&netlist);
    let wave = WaveRecorder::new(app).record();
    let vcd = write_vcd(&netlist, &wave, netlist.outputs(), "1ns");
    match flag(rest, "-o") {
        Some(path) => {
            std::fs::write(path, vcd).unwrap_or_else(|e| {
                eprintln!("cannot write `{path}`: {e}");
                exit(1);
            });
            eprintln!("wrote waveform of {} outputs to {path}", netlist.outputs().len());
        }
        None => outp!("{vcd}"),
    }
}
