//! Integration tests for the `parlogsim` command-line binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_parlogsim"))
}

fn run_ok(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "`parlogsim {}` failed:\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = cli().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn stats_on_builtin_circuit() {
    let out = run_ok(&["stats", "s27"]);
    assert!(out.contains("inputs:     4"));
    assert!(out.contains("flip-flops: 3"));
}

#[test]
fn generate_parse_simulate_round_trip() {
    let dir = std::env::temp_dir().join("parlogsim_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("synth200.bench");
    let p = path.to_str().unwrap();

    run_ok(&["generate", "200", "-o", p]);
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("INPUT("));

    let stats = run_ok(&["stats", p]);
    assert!(stats.contains("gates:      200"), "{stats}");

    let sim = run_ok(&["simulate", p, "-k", "4", "--end", "100"]);
    assert!(sim.contains("sequential:"));
    assert!(sim.contains("Multilevel on 4 nodes (gate-per-lp):"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn partition_reports_quality_for_every_strategy() {
    for strategy in ["random", "dfs", "cluster", "topological", "multilevel", "conepartition"] {
        let out = run_ok(&["partition", "s27", "-k", "2", "-s", strategy]);
        assert!(out.contains("edge cut:"), "{strategy}: {out}");
        assert!(out.contains("imbalance:"), "{strategy}: {out}");
    }
}

#[test]
fn partition_rejects_unknown_strategy() {
    let out = cli().args(["partition", "s27", "-s", "metis"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn vcd_output_is_well_formed() {
    let out = run_ok(&["vcd", "s27", "--end", "80"]);
    assert!(out.starts_with("$date"));
    assert!(out.contains("$enddefinitions $end"));
    assert!(out.contains("$var wire 1"));
    assert!(out.lines().any(|l| l.starts_with('#')), "no value changes");
}

#[test]
fn simulate_synth_spec() {
    let out = run_ok(&["simulate", "synth:100", "-k", "2", "--end", "60", "-s", "random"]);
    assert!(out.contains("Random on 2 nodes (gate-per-lp):"));
}

#[test]
fn simulate_compiled_exec_reports_block_work() {
    let out = run_ok(&["simulate", "synth:150", "-k", "4", "--end", "100", "--exec", "compiled"]);
    assert!(out.contains("(compiled)"), "{out}");
    assert!(out.contains("block activations"), "{out}");
    assert!(out.contains("ops"), "{out}");
}

#[test]
fn simulate_rejects_unknown_exec_model() {
    let out = cli().args(["simulate", "s27", "--exec", "jit"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown exec model"), "{err}");
    assert!(err.contains("gate-per-lp") && err.contains("compiled"), "{err}");
}

#[test]
fn simulate_trace_writes_jsonl_series() {
    let dir = std::env::temp_dir().join("parlogsim_cli_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    let p = path.to_str().unwrap();

    let out =
        run_ok(&["simulate", "s27", "-k", "2", "--end", "200", "--trace", p, "--bucket", "50"]);
    assert!(out.contains("sequential:"));
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(!text.is_empty(), "trace file is empty");
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "not JSONL: {line}");
        assert!(line.contains("\"events\":"));
        assert!(line.contains("\"vt_lo\":"));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_prints_table_and_exports_csv() {
    let table = run_ok(&["trace", "s27", "-k", "2", "--end", "200", "--bucket", "50"]);
    assert!(table.contains("bucket width 50 vt"), "{table}");
    assert!(table.contains("total"));

    let csv =
        run_ok(&["trace", "s27", "-k", "2", "--end", "200", "--bucket", "50", "--format", "csv"]);
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    assert!(header.starts_with("bucket,vt_lo,vt_hi,"), "{header}");
    let cols = header.split(',').count();
    for l in lines {
        assert_eq!(l.split(',').count(), cols, "ragged row: {l}");
    }
}

#[test]
fn trace_rejects_unknown_format() {
    let out = cli().args(["trace", "s27", "--format", "xml"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn hotspots_lists_offenders() {
    let out = run_ok(&["hotspots", "synth:150", "-k", "4", "--end", "120"]);
    assert!(out.contains("rollbacks total"));
    assert!(out.contains("gate"));
}

#[test]
fn dot_renders_partitioned_graph() {
    let out = run_ok(&["dot", "s27", "-k", "2", "-s", "dfs"]);
    assert!(out.starts_with("digraph"));
    assert!(out.contains("fillcolor"));
    assert!(out.contains("->"));
}
