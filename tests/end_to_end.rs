//! Workspace-level integration tests: the full netlist → partition →
//! Time Warp pipeline, exercised the way the experiment harness uses it.

use parlogsim::prelude::*;

#[test]
fn paper_suite_has_table1_characteristics() {
    let expect = [("s5378", 35, 2779, 49), ("s9234", 36, 5597, 39), ("s15850", 77, 10383, 150)];
    for (synth, (name, ins, gates, outs)) in IscasSynth::paper_suite().iter().zip(expect) {
        let netlist = synth.build();
        let s = CircuitStats::of(&netlist);
        assert_eq!(s.name, name);
        assert_eq!((s.inputs, s.gates, s.outputs), (ins, gates, outs));
    }
}

#[test]
fn all_strategies_all_nodes_match_sequential_on_s27() {
    let netlist = parlogsim::netlist::data::s27();
    let graph = CircuitGraph::from_netlist(&netlist);
    let base = SimConfig { end_time: 500, ..Default::default() };
    for exec in [ExecModel::GatePerLp, ExecModel::CompiledBlocks(CompileOptions::default())] {
        let mut cfg = base.clone();
        cfg.exec = exec;
        for strategy in all_partitioners() {
            for nodes in [1, 2, 3, 4] {
                Cell::new(&netlist, &graph, &cfg).nodes(nodes).checked().run(strategy.as_ref());
            }
        }
    }
}

#[test]
fn medium_synthetic_circuit_full_pipeline() {
    let netlist = IscasSynth::small(600, 17).build();
    let graph = CircuitGraph::from_netlist(&netlist);
    let cfg = SimConfig { end_time: 150, ..Default::default() };
    let seq = run_seq_baseline(&netlist, &cfg);
    assert!(seq.events > 1000, "workload too idle to be meaningful");

    for strategy in all_partitioners() {
        let m = Cell::new(&netlist, &graph, &cfg).nodes(6).seed(1).checked().run(strategy.as_ref());
        assert_eq!(m.events_committed, seq.events, "{}", m.strategy);
        assert!(m.exec_time_s > 0.0);
    }
}

#[test]
fn multilevel_dominates_on_communication() {
    // The paper's Figure 5 claim, as a regression test: multilevel sends
    // at most half the messages of Random and Topological at 8 nodes.
    let netlist = IscasSynth::small(800, 5).build();
    let graph = CircuitGraph::from_netlist(&netlist);
    let cfg = SimConfig { end_time: 150, ..Default::default() };
    let ml = Cell::new(&netlist, &graph, &cfg).nodes(8).run(&MultilevelPartitioner::default());
    let rnd = Cell::new(&netlist, &graph, &cfg).nodes(8).run(&RandomPartitioner);
    let topo = Cell::new(&netlist, &graph, &cfg).nodes(8).run(&TopologicalPartitioner);
    assert!(
        ml.app_messages * 2 < rnd.app_messages,
        "ml {} vs random {}",
        ml.app_messages,
        rnd.app_messages
    );
    assert!(
        ml.app_messages * 2 < topo.app_messages,
        "ml {} vs topo {}",
        ml.app_messages,
        topo.app_messages
    );
}

#[test]
fn lazy_and_sparse_checkpoints_preserve_committed_history() {
    let netlist = IscasSynth::small(300, 9).build();
    let graph = CircuitGraph::from_netlist(&netlist);
    let part = MultilevelPartitioner::default().partition(&graph, 4, 0);

    let base_cfg = SimConfig { end_time: 150, ..Default::default() };
    let seq = run_seq_baseline(&netlist, &base_cfg);

    for kernel in [
        KernelConfig { cancellation: Cancellation::Lazy, ..Default::default() },
        KernelConfig { checkpoint_interval: 5, ..Default::default() },
        KernelConfig {
            cancellation: Cancellation::Lazy,
            checkpoint_interval: 3,
            gvt_period: 64,
            ..Default::default()
        },
    ] {
        let mut cfg = base_cfg.clone();
        cfg.platform.kernel = kernel;
        let app = cfg.build_app(&netlist);
        let res = Simulator::new(&app)
            .platform_config(&cfg.platform)
            .run(Backend::Platform { assignment: &part.assignment, nodes: 4 })
            .unwrap();
        assert_eq!(
            app.fingerprint(&res.states),
            seq.fingerprint,
            "kernel config {kernel:?} diverged"
        );
    }
}

#[test]
fn threaded_executive_matches_sequential_gate_sim() {
    let netlist = IscasSynth::small(150, 4).build();
    let graph = CircuitGraph::from_netlist(&netlist);
    let cfg = SimConfig { end_time: 100, ..Default::default() };
    let app = cfg.build_app(&netlist);
    let seq = Simulator::new(&app).run(Backend::Sequential).unwrap();
    let part = MultilevelPartitioner::default().partition(&graph, 2, 0);
    let res = Simulator::new(&app)
        .run(Backend::Threaded { assignment: &part.assignment, clusters: 2 })
        .unwrap();
    assert_eq!(app.fingerprint(&res.states), app.fingerprint(&seq.states));
    assert_eq!(res.stats.events_committed, seq.stats.events_processed);
}

#[test]
fn bench_format_round_trips_generated_circuits() {
    for seed in [1u64, 2, 3] {
        let n1 = IscasSynth::small(200, seed).build();
        let text = parlogsim::netlist::bench_format::write(&n1);
        let n2 = parlogsim::netlist::bench_format::parse(n1.name(), &text).unwrap();
        assert_eq!(n1.len(), n2.len());
        assert_eq!(n1.outputs().len(), n2.outputs().len());
        // Same simulation behaviour, not just same shape.
        let cfg = SimConfig { end_time: 80, ..Default::default() };
        let a = run_seq_baseline(&n1, &cfg);
        let b = run_seq_baseline(&n2, &cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.fingerprint, b.fingerprint);
    }
}

#[test]
fn memory_limit_kills_memory_hungry_runs_only() {
    let netlist = IscasSynth::small(300, 12).build();
    let graph = CircuitGraph::from_netlist(&netlist);
    let mut cfg = SimConfig { end_time: 150, ..Default::default() };
    cfg.platform.kernel.gvt_period = 16;

    // Generous limit: must survive.
    cfg.platform.state_limit_per_node = Some(1_000_000);
    let ok = Cell::new(&netlist, &graph, &cfg).nodes(4).run(&RandomPartitioner);
    assert!(!ok.out_of_memory);

    // Starvation limit: must die cleanly.
    cfg.platform.state_limit_per_node = Some(10);
    let dead = Cell::new(&netlist, &graph, &cfg).nodes(4).run(&RandomPartitioner);
    assert!(dead.out_of_memory);
}
