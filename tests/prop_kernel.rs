//! Property-style tests over the Time Warp kernel: the committed history
//! of the optimistic virtual-platform executive must equal the sequential
//! history for *arbitrary* circuits, partitionings, node counts and
//! kernel configurations — the fundamental correctness theorem of Time
//! Warp [10], checked empirically over a deterministic case sweep. Also:
//! cost/latency fuzzing must never change committed results (only
//! timings), the determinism oracle for the platform model itself.

use parlogsim::prelude::*;

/// splitmix64 — drives the case sweeps deterministically.
fn mix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn arbitrary_assignment(n: usize, nodes: usize, seed: u64) -> Vec<u32> {
    // Deterministic pseudo-random assignment touching every node.
    (0..n)
        .map(|i| {
            let h =
                (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed).rotate_left(21);
            (h % nodes as u64) as u32
        })
        .collect()
}

#[test]
fn committed_history_is_kernel_independent() {
    let mut s = 10u64;
    for _ in 0..24 {
        let gates = (30 + mix(&mut s) % 170) as usize;
        let circuit_seed = mix(&mut s) % 500;
        let nodes = (2 + mix(&mut s) % 5) as usize;
        let assign_seed = mix(&mut s) % 100;
        let lazy = mix(&mut s).is_multiple_of(2);
        let checkpoint = (1 + mix(&mut s) % 5) as u32;

        let netlist = IscasSynth::small(gates, circuit_seed).build();
        let cfg = SimConfig { end_time: 80, ..Default::default() };
        let app = cfg.build_app(&netlist);
        let seq = Simulator::new(&app).run(Backend::Sequential).unwrap();

        let mut platform = cfg.platform;
        platform.kernel.cancellation =
            if lazy { Cancellation::Lazy } else { Cancellation::Aggressive };
        platform.kernel.checkpoint_interval = checkpoint;
        let assignment = arbitrary_assignment(netlist.len(), nodes, assign_seed);
        let res = Simulator::new(&app)
            .platform_config(&platform)
            .run(Backend::Platform { assignment: &assignment, nodes })
            .unwrap();

        assert_eq!(app.fingerprint(&res.states), app.fingerprint(&seq.states));
        assert_eq!(res.stats.events_committed, seq.stats.events_processed);
    }
}

#[test]
fn cost_model_fuzzing_changes_time_not_results() {
    let netlist = IscasSynth::small(80, 11).build();
    let cfg = SimConfig { end_time: 60, ..Default::default() };
    let app = cfg.build_app(&netlist);
    let seq = Simulator::new(&app).run(Backend::Sequential).unwrap();

    let mut s = 20u64;
    for _ in 0..24 {
        let ev = 1_000 + mix(&mut s) % 299_000;
        let lat = 1_000 + mix(&mut s) % 499_000;
        let send = 1_000 + mix(&mut s) % 149_000;
        let gvt_period = 8 + mix(&mut s) % 1992;

        let mut platform = cfg.platform;
        platform.cost = CostModel {
            event_exec_ns: ev,
            net_latency_ns: lat,
            msg_send_ns: send,
            msg_recv_ns: send,
            ..CostModel::default()
        };
        platform.kernel.gvt_period = gvt_period;
        let assignment = arbitrary_assignment(netlist.len(), 4, 3);
        let res = Simulator::new(&app)
            .platform_config(&platform)
            .run(Backend::Platform { assignment: &assignment, nodes: 4 })
            .unwrap();

        // Message timing reshuffles rollback patterns freely, but the
        // committed history is invariant.
        assert_eq!(app.fingerprint(&res.states), app.fingerprint(&seq.states));
    }
}

#[test]
fn platform_statistics_are_consistent() {
    let mut s = 30u64;
    for _ in 0..24 {
        let gates = (30 + mix(&mut s) % 120) as usize;
        let circuit_seed = mix(&mut s) % 200;
        let nodes = (1 + mix(&mut s) % 5) as usize;

        let netlist = IscasSynth::small(gates, circuit_seed).build();
        let cfg = SimConfig { end_time: 80, ..Default::default() };
        let app = cfg.build_app(&netlist);
        let assignment = arbitrary_assignment(netlist.len(), nodes, 1);
        let res = Simulator::new(&app)
            .platform_config(&cfg.platform)
            .run(Backend::Platform { assignment: &assignment, nodes })
            .unwrap();
        let st = &res.stats;

        // Accounting identities.
        assert_eq!(st.events_committed, st.events_processed - st.events_rolled_back);
        assert!(st.efficiency() <= 1.0);
        assert!(st.final_gvt.is_inf());
        if nodes == 1 {
            assert_eq!(st.rollbacks(), 0);
            assert_eq!(st.app_messages, 0);
        }
        // Makespan at least the busiest node's share of pure event work.
        let clocks = res.outcome.node_clocks_ns().expect("platform outcome");
        let max_clock = clocks.iter().copied().max().unwrap_or(0);
        let exec_time_s = res.outcome.exec_time_s().expect("platform outcome");
        assert!(exec_time_s >= max_clock as f64 / 1e9 - 1e-9);
    }
}

#[test]
fn lazy_sparse_checkpoints_agree_across_all_three_executives() {
    // The adversarial corner for the kernel's annihilation index and lazy
    // regeneration filter: lazy cancellation holds antis back, and sparse
    // checkpoints force long coast-forwards whose replayed sends must hit
    // the regeneration scan. All three executives must still commit the
    // sequential history bit-for-bit.
    let mut s = 50u64;
    for _ in 0..8 {
        let gates = (40 + mix(&mut s) % 140) as usize;
        let circuit_seed = mix(&mut s) % 400;
        let nodes = (2 + mix(&mut s) % 4) as usize;
        let checkpoint = (3 + mix(&mut s) % 4) as u32; // sparse: 3..=6

        let netlist = IscasSynth::small(gates, circuit_seed).build();
        let cfg = SimConfig { end_time: 80, ..Default::default() };
        let app = cfg.build_app(&netlist);
        let seq = Simulator::new(&app).run(Backend::Sequential).unwrap();
        let want = app.fingerprint(&seq.states);

        let mut platform = cfg.platform;
        platform.kernel.cancellation = Cancellation::Lazy;
        platform.kernel.checkpoint_interval = checkpoint;
        let assignment = arbitrary_assignment(netlist.len(), nodes, circuit_seed);
        let plat = Simulator::new(&app)
            .platform_config(&platform)
            .run(Backend::Platform { assignment: &assignment, nodes })
            .unwrap();
        assert_eq!(app.fingerprint(&plat.states), want, "platform diverged");

        let thr = Simulator::new(&app)
            .config(platform.kernel)
            .run(Backend::Threaded { assignment: &assignment, clusters: nodes })
            .unwrap();
        assert_eq!(app.fingerprint(&thr.states), want, "threaded diverged");
        assert_eq!(thr.stats.events_committed, seq.stats.events_processed);
    }
}

#[test]
fn migration_never_changes_the_committed_history() {
    // Dynamic load balancing sweep: arbitrary circuits, placements and
    // balancer cadences. LP migration reshuffles *where* events execute
    // mid-run; the committed history must stay the sequential one on both
    // optimistic executives, and the platform executive must stay
    // byte-reproducible run-to-run with the balancer active.
    let mut s = 60u64;
    for round in 0..8 {
        let gates = (40 + mix(&mut s) % 140) as usize;
        let circuit_seed = mix(&mut s) % 400;
        let nodes = (2 + mix(&mut s) % 4) as usize;
        let period = 1 + mix(&mut s) % 4;
        let max_moves = (1 + mix(&mut s) % 8) as usize;

        let netlist = IscasSynth::small(gates, circuit_seed).build();
        let cfg = SimConfig { end_time: 80, ..Default::default() };
        let app = cfg.build_app(&netlist);
        let seq = Simulator::new(&app).run(Backend::Sequential).unwrap();
        let want = app.fingerprint(&seq.states);

        let mut platform = cfg.platform;
        platform.kernel.gvt_period = 8; // frequent GVT → many balance points
        let lb = DynLbConfig { period, max_moves, min_comm_gain: 0, ..Default::default() };
        let assignment = arbitrary_assignment(netlist.len(), nodes, circuit_seed);
        let run_plat = || {
            Simulator::new(&app)
                .platform_config(&platform)
                .load_balancer(lb)
                .run(Backend::Platform { assignment: &assignment, nodes })
                .unwrap()
        };
        let plat = run_plat();
        assert_eq!(app.fingerprint(&plat.states), want, "platform+dynlb diverged");
        assert_eq!(plat.stats.events_committed, seq.stats.events_processed);
        let again = run_plat();
        assert_eq!(again.stats, plat.stats, "platform+dynlb not reproducible");
        assert_eq!(again.outcome.node_clocks_ns(), plat.outcome.node_clocks_ns());

        let thr = Simulator::new(&app)
            .config(platform.kernel)
            .load_balancer(lb)
            .run(Backend::Threaded { assignment: &assignment, clusters: nodes })
            .unwrap();
        assert_eq!(app.fingerprint(&thr.states), want, "threaded+dynlb diverged");
        assert_eq!(thr.stats.events_committed, seq.stats.events_processed);

        // At least some sweep rounds must actually migrate, or this test
        // proves nothing; round-robin through a few it always triggers.
        if round == 0 {
            assert!(
                plat.stats.migrations > 0,
                "sweep round 0 expected migrations (period={period}, moves={max_moves})"
            );
        }
    }
}

#[test]
fn compiled_blocks_match_gate_per_lp_for_arbitrary_circuits() {
    // The cross-engine determinism theorem: for arbitrary circuits and
    // arbitrary block maps, the compiled gate-block engine commits the
    // same per-gate history as the gate-per-LP oracle — sequentially and
    // on the optimistic platform executive.
    let mut s = 70u64;
    for _ in 0..16 {
        let gates = (30 + mix(&mut s) % 170) as usize;
        let circuit_seed = mix(&mut s) % 500;
        let nodes = (2 + mix(&mut s) % 5) as usize;
        let block_seed = mix(&mut s) % 100;

        let netlist = IscasSynth::small(gates, circuit_seed).build();
        let cfg = SimConfig { end_time: 80, ..Default::default() };
        let gate = cfg.build_app(&netlist);
        let want =
            gate.fingerprint(&Simulator::new(&gate).run(Backend::Sequential).unwrap().states);

        // Arbitrary (partition-agnostic) block map: blocks need not align
        // with the placement at all.
        let blocks = arbitrary_assignment(netlist.len(), nodes, block_seed);
        let mut ccfg = cfg.clone();
        ccfg.exec = ExecModel::CompiledBlocks(CompileOptions { blocks: Some(blocks.clone()) });
        let compiled = ccfg.build_app(&netlist);

        let seq = Simulator::new(&compiled).run(Backend::Sequential).unwrap();
        assert_eq!(compiled.fingerprint(&seq.states), want, "sequential compiled diverged");

        let assignment = compiled.lp_assignment(&arbitrary_assignment(netlist.len(), nodes, 7));
        let plat = Simulator::new(&compiled)
            .platform_config(&cfg.platform)
            .run(Backend::Platform { assignment: &assignment, nodes })
            .unwrap();
        assert_eq!(compiled.fingerprint(&plat.states), want, "platform compiled diverged");
        assert_eq!(plat.stats.events_committed, seq.stats.events_processed);
        assert!(plat.stats.ops_executed >= seq.stats.ops_executed);
    }
}

#[test]
fn compiled_blocks_survive_rollback_and_coast_forward_storms() {
    // Rollback-path stress for the compiled engine: kernel configs chosen
    // to maximise rollback machinery coverage — lazy cancellation (block
    // re-execution must regenerate byte-identical boundary messages for
    // the regeneration filter to be sound), sparse checkpoints (rollbacks
    // land between snapshots, forcing coast-forward replay of whole block
    // activations), and a tiny GVT period with a tight optimism window
    // (fossil collection constantly trims the state queue the replays
    // read from). Committed per-gate fingerprints must still match the
    // sequential oracle on both optimistic executives.
    let netlist = IscasSynth::small(180, 11).build();
    let cfg = SimConfig { end_time: 120, ..Default::default() };
    let gate = cfg.build_app(&netlist);
    let want = gate.fingerprint(&Simulator::new(&gate).run(Backend::Sequential).unwrap().states);

    let nodes = 3;
    let blocks = arbitrary_assignment(netlist.len(), nodes, 23);
    let mut ccfg = cfg.clone();
    ccfg.exec = ExecModel::CompiledBlocks(CompileOptions { blocks: Some(blocks) });
    let compiled = ccfg.build_app(&netlist);
    let assignment = compiled.lp_assignment(&arbitrary_assignment(netlist.len(), nodes, 5));

    let mut coasted = 0;
    let mut rolled = 0;
    for (cancellation, checkpoint, gvt, window) in [
        (Cancellation::Lazy, 4, 2, Some(2)),
        (Cancellation::Lazy, 5, 512, None),
        (Cancellation::Aggressive, 4, 2, Some(2)),
        (Cancellation::Aggressive, 3, 4, None),
    ] {
        let kernel =
            KernelConfig { cancellation, checkpoint_interval: checkpoint, gvt_period: gvt, window };
        let plat = Simulator::new(&compiled)
            .config(kernel)
            .run(Backend::Platform { assignment: &assignment, nodes })
            .unwrap();
        assert_eq!(
            compiled.fingerprint(&plat.states),
            want,
            "compiled diverged under {cancellation:?}/ckpt{checkpoint}/gvt{gvt}/{window:?}"
        );
        coasted += plat.stats.events_coasted;
        rolled += plat.stats.events_rolled_back;

        let thr = Simulator::new(&compiled)
            .config(kernel)
            .run(Backend::Threaded { assignment: &assignment, clusters: nodes })
            .unwrap();
        assert_eq!(
            compiled.fingerprint(&thr.states),
            want,
            "threaded compiled diverged under {cancellation:?}/ckpt{checkpoint}/gvt{gvt}/{window:?}"
        );
    }
    // The sweep must actually exercise the machinery it claims to stress.
    assert!(rolled > 0, "no rollbacks — configs too tame to prove anything");
    assert!(coasted > 0, "no coast-forward replays — sparse checkpoints unexercised");
}

#[test]
fn replication_is_coherent_across_all_three_executives() {
    // Logic replication must be semantically invisible: for arbitrary
    // circuits, partitionings and (aggressive) replica plans, committed
    // per-gate fingerprints of the replicated model — in gate-per-LP AND
    // compiled-block mode, on all three executives — must be
    // byte-identical to the *unreplicated* sequential oracle's. Replicas
    // only relocate evaluations; they never change the waveform.
    let mut s = 90u64;
    let mut total_saved = 0u64;
    let mut total_replicas = 0u64;
    for _ in 0..10 {
        let gates = (40 + mix(&mut s) % 140) as usize;
        let circuit_seed = mix(&mut s) % 400;
        let nodes = (2 + mix(&mut s) % 3) as usize;

        let netlist = IscasSynth::small(gates, circuit_seed).build();
        let graph = CircuitGraph::from_netlist(&netlist);
        // Random placements leave plenty of cut hub nets for the planner.
        let part = RandomPartitioner.partition(&graph, nodes, circuit_seed);
        let cfg = SimConfig { end_time: 80, ..Default::default() };
        let oracle = cfg.build_app(&netlist);
        let want =
            oracle.fingerprint(&Simulator::new(&oracle).run(Backend::Sequential).unwrap().states);

        // Aggressive plan: replicate every profitable gate, free replicas.
        let mut rcfg = cfg.clone();
        rcfg.replication = Some(ReplicationConfig {
            budget_per_part: 96,
            min_fanout: 1,
            max_fanin: 5,
            gate_cost: 0,
            passes: 3,
        });
        let app = rcfg.build_app_partitioned(&netlist, &graph, &part);
        total_replicas += app.replicated_units();

        let seq = Simulator::new(&app).run(Backend::Sequential).unwrap();
        assert_eq!(app.fingerprint(&seq.states), want, "sequential replicated diverged");

        // Rollback storm: lazy cancellation + sparse checkpoints + tiny
        // GVT period, replica LPs placed via the pin-aware lp_assignment.
        let kernel = KernelConfig {
            cancellation: Cancellation::Lazy,
            checkpoint_interval: (3 + mix(&mut s) % 4) as u32,
            gvt_period: 8,
            ..Default::default()
        };
        let assignment = app.lp_assignment(&part.assignment);
        let plat = Simulator::new(&app)
            .config(kernel)
            .run(Backend::Platform { assignment: &assignment, nodes })
            .unwrap();
        assert_eq!(app.fingerprint(&plat.states), want, "platform replicated diverged");
        assert_eq!(plat.stats.replicated_gates, app.replicated_units());
        total_saved += plat.stats.messages_saved;

        let thr = Simulator::new(&app)
            .config(kernel)
            .run(Backend::Threaded { assignment: &assignment, clusters: nodes })
            .unwrap();
        assert_eq!(app.fingerprint(&thr.states), want, "threaded replicated diverged");

        // Compiled-block mode with the same plan: blocks derive from the
        // partitioning, replicas fuse into their target blocks.
        let mut ccfg = rcfg.clone();
        ccfg.exec = ExecModel::CompiledBlocks(CompileOptions::default());
        let fused = ccfg.build_app_partitioned(&netlist, &graph, &part);
        let cseq = Simulator::new(&fused).run(Backend::Sequential).unwrap();
        assert_eq!(fused.fingerprint(&cseq.states), want, "compiled replicated diverged");
        let cassign = fused.lp_assignment(&part.assignment);
        let cplat = Simulator::new(&fused)
            .config(kernel)
            .run(Backend::Platform { assignment: &cassign, nodes })
            .unwrap();
        assert_eq!(fused.fingerprint(&cplat.states), want, "compiled platform replicated diverged");
    }
    // The sweep must actually replicate and actually kill remote traffic,
    // or coherence was proven for the empty plan only.
    assert!(total_replicas > 0, "no round produced a replica plan");
    assert!(total_saved > 0, "replication never saved a message");
}

#[test]
fn stimulus_seed_changes_history_but_not_event_conservation() {
    let mut s = 40u64;
    for _ in 0..24 {
        let seed_a = mix(&mut s) % 100;
        let seed_b = 100 + mix(&mut s) % 100;
        let netlist = IscasSynth::small(100, 5).build();
        let mut cfg = SimConfig { end_time: 80, ..Default::default() };
        cfg.stim = StimulusConfig { seed: seed_a, ..cfg.stim };
        let a = run_seq_baseline(&netlist, &cfg);
        cfg.stim = StimulusConfig { seed: seed_b, ..cfg.stim };
        let b = run_seq_baseline(&netlist, &cfg);
        // Different stimulus: different histories...
        assert_ne!(a.fingerprint, b.fingerprint);
        // ...but both runs commit everything they process (sequential).
        assert!(a.events > 0 && b.events > 0);
    }
}
