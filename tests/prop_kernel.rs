//! Property-based tests over the Time Warp kernel: the committed history
//! of the optimistic virtual-platform executive must equal the sequential
//! history for *arbitrary* circuits, partitionings, node counts and
//! kernel configurations — the fundamental correctness theorem of Time
//! Warp [10], checked empirically. Also: cost/latency fuzzing must never
//! change committed results (only timings), the determinism oracle for
//! the platform model itself.

use proptest::prelude::*;

use parlogsim::prelude::*;

fn arbitrary_assignment(n: usize, nodes: usize, seed: u64) -> Vec<u32> {
    // Deterministic pseudo-random assignment touching every node.
    (0..n)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed)
                .rotate_left(21);
            (h % nodes as u64) as u32
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn committed_history_is_kernel_independent(
        gates in 30usize..200,
        circuit_seed in 0u64..500,
        nodes in 2usize..7,
        assign_seed in 0u64..100,
        lazy in proptest::bool::ANY,
        checkpoint in 1u32..6,
    ) {
        let netlist = IscasSynth::small(gates, circuit_seed).build();
        let cfg = SimConfig { end_time: 80, ..Default::default() };
        let app = cfg.build_app(&netlist);
        let seq = parlogsim::timewarp::run_sequential(&app);

        let mut platform = cfg.platform;
        platform.kernel.cancellation =
            if lazy { Cancellation::Lazy } else { Cancellation::Aggressive };
        platform.kernel.checkpoint_interval = checkpoint;
        let assignment = arbitrary_assignment(netlist.len(), nodes, assign_seed);
        let res = run_platform(&app, &assignment, nodes, &platform).unwrap();

        prop_assert_eq!(fingerprint(&res.states), fingerprint(&seq.states));
        prop_assert_eq!(res.stats.events_committed, seq.stats.events_processed);
    }

    #[test]
    fn cost_model_fuzzing_changes_time_not_results(
        ev in 1_000u64..300_000,
        lat in 1_000u64..500_000,
        send in 1_000u64..150_000,
        gvt_period in 8u64..2000,
    ) {
        let netlist = IscasSynth::small(80, 11).build();
        let cfg = SimConfig { end_time: 60, ..Default::default() };
        let app = cfg.build_app(&netlist);
        let seq = parlogsim::timewarp::run_sequential(&app);

        let mut platform = cfg.platform;
        platform.cost = CostModel {
            event_exec_ns: ev,
            net_latency_ns: lat,
            msg_send_ns: send,
            msg_recv_ns: send,
            ..CostModel::default()
        };
        platform.kernel.gvt_period = gvt_period;
        let assignment = arbitrary_assignment(netlist.len(), 4, 3);
        let res = run_platform(&app, &assignment, 4, &platform).unwrap();

        // Message timing reshuffles rollback patterns freely, but the
        // committed history is invariant.
        prop_assert_eq!(fingerprint(&res.states), fingerprint(&seq.states));
    }

    #[test]
    fn platform_statistics_are_consistent(
        gates in 30usize..150,
        circuit_seed in 0u64..200,
        nodes in 1usize..6,
    ) {
        let netlist = IscasSynth::small(gates, circuit_seed).build();
        let cfg = SimConfig { end_time: 80, ..Default::default() };
        let app = cfg.build_app(&netlist);
        let assignment = arbitrary_assignment(netlist.len(), nodes, 1);
        let res = run_platform(&app, &assignment, nodes, &cfg.platform).unwrap();
        let s = &res.stats;

        // Accounting identities.
        prop_assert_eq!(s.events_committed, s.events_processed - s.events_rolled_back);
        prop_assert!(s.efficiency() <= 1.0);
        prop_assert!(s.final_gvt.is_inf());
        if nodes == 1 {
            prop_assert_eq!(s.rollbacks(), 0);
            prop_assert_eq!(s.app_messages, 0);
        }
        // Makespan at least the busiest node's share of pure event work.
        let max_clock = res.node_clocks_ns.iter().copied().max().unwrap_or(0);
        prop_assert!(res.exec_time_s >= max_clock as f64 / 1e9 - 1e-9);
    }

    #[test]
    fn stimulus_seed_changes_history_but_not_event_conservation(
        seed_a in 0u64..100,
        seed_b in 100u64..200,
    ) {
        let netlist = IscasSynth::small(100, 5).build();
        let mut cfg = SimConfig { end_time: 80, ..Default::default() };
        cfg.stim = StimulusConfig { seed: seed_a, ..cfg.stim };
        let a = run_seq_baseline(&netlist, &cfg);
        cfg.stim = StimulusConfig { seed: seed_b, ..cfg.stim };
        let b = run_seq_baseline(&netlist, &cfg);
        // Different stimulus: different histories...
        prop_assert_ne!(a.fingerprint, b.fingerprint);
        // ...but both runs commit everything they process (sequential).
        prop_assert!(a.events > 0 && b.events > 0);
    }
}
