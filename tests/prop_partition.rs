//! Property-style tests over the partitioning stack: every strategy, on
//! a deterministic sweep of synthetic circuits, must produce structurally
//! valid, reasonably balanced partitions; refinement must never increase
//! the cut; the multilevel invariants of the paper's §3 must hold for
//! every input. (The offline build has no proptest, so the cases are
//! enumerated with an explicit PRNG.)

use parlogsim::partition::multilevel::coarsen::{coarsen, CoarsenConfig};
use parlogsim::partition::multilevel::refine::{greedy_refine, GreedyConfig};
use parlogsim::prelude::*;

/// splitmix64 — drives the case sweeps deterministically.
fn mix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// 48 deterministic (circuit, k) cases in the original proptest ranges.
fn cases() -> Vec<(CircuitGraph, usize)> {
    let mut s = 0x9A27_u64;
    (0..48)
        .map(|_| {
            let gates = (30 + mix(&mut s) % 370) as usize;
            let seed = mix(&mut s) % 1000;
            let k = (2 + mix(&mut s) % 7) as usize;
            let netlist = IscasSynth::small(gates, seed).build();
            (CircuitGraph::from_netlist(&netlist), k)
        })
        .collect()
}

#[test]
fn every_strategy_yields_valid_partitions() {
    for (g, k) in cases() {
        for strategy in all_partitioners() {
            let p = strategy.partition(&g, k, 7);
            assert!(p.is_valid_for(&g), "{} invalid", strategy.name());
            assert_eq!(p.k, k);
            // No empty partitions on circuits with >= 4k gates.
            if g.len() >= 4 * k {
                assert!(
                    p.sizes().iter().all(|&s| s > 0),
                    "{} produced an empty partition",
                    strategy.name()
                );
            }
        }
    }
}

#[test]
fn balanced_strategies_respect_balance() {
    for (g, k) in cases() {
        // Random and Multilevel both advertise load balance.
        let slack = 1.0 + 16.0 / (g.len() as f64 / k as f64); // integer rounding allowance
        let p = RandomPartitioner.partition(&g, k, 3);
        assert!(metrics::imbalance(&g, &p) <= slack.max(1.05));
        let p = MultilevelPartitioner::default().partition(&g, k, 3);
        assert!(
            metrics::imbalance(&g, &p) <= slack.max(1.06),
            "multilevel imbalance {}",
            metrics::imbalance(&g, &p)
        );
    }
}

#[test]
fn greedy_refinement_never_increases_cut() {
    let mut s = 0x6EF1_u64;
    for (g, k) in cases() {
        let seed = mix(&mut s) % 50;
        let mut p = RandomPartitioner.partition(&g, k, seed);
        let before = metrics::edge_cut(&g, &p);
        let stats = greedy_refine(&g, &mut p, &GreedyConfig::default(), seed);
        assert!(stats.cut_after <= before);
        assert_eq!(stats.cut_after, metrics::edge_cut(&g, &p));
        assert!(p.is_valid_for(&g));
    }
}

#[test]
fn coarsening_invariants_hold() {
    for (g, k) in cases() {
        // Paper §3: globules are disjoint and cover V; total weight is
        // invariant; input globules never combine; the graph shrinks.
        let levels = coarsen(&g, &CoarsenConfig::for_k(k));
        let mut fine = g.clone();
        for level in &levels {
            assert_eq!(level.map.len(), fine.len());
            assert!(level.graph.len() < fine.len());
            assert_eq!(level.graph.total_weight(), g.total_weight());
            let mut weight_check = vec![0u64; level.graph.len()];
            let mut inputs_in = vec![0usize; level.graph.len()];
            for v in fine.vertices() {
                let c = level.map[v as usize] as usize;
                assert!(c < level.graph.len());
                weight_check[c] += fine.vweight(v);
                if fine.is_input(v) {
                    inputs_in[c] += 1;
                }
            }
            for c in level.graph.vertices() {
                assert_eq!(weight_check[c as usize], level.graph.vweight(c));
                assert!(inputs_in[c as usize] <= 1, "input globules combined");
            }
            fine = level.graph.clone();
        }
    }
}

#[test]
fn projection_preserves_partition_semantics() {
    for (g, k) in cases() {
        // ∀ v ∈ V_ij : P[v] = P[V_ij] — projecting a coarse partition must
        // give every fine vertex its globule's partition.
        let levels = coarsen(&g, &CoarsenConfig::for_k(k));
        if levels.is_empty() {
            continue;
        }
        let coarsest = &levels.last().unwrap().graph;
        let coarse_p = RandomPartitioner.partition(coarsest, k, 1);
        // Project down through every level.
        let mut p = coarse_p.clone();
        for level in levels.iter().rev() {
            let finer = p.project(&level.map);
            for (v, &c) in level.map.iter().enumerate() {
                assert_eq!(finer.assignment[v], p.assignment[c as usize]);
            }
            p = finer;
        }
        assert!(p.is_valid_for(&g));
    }
}

#[test]
fn cut_metric_is_symmetric_in_relabeling() {
    for (g, k) in cases() {
        // Swapping two partition labels cannot change the cut.
        let p = DfsPartitioner.partition(&g, k, 0);
        let cut = metrics::edge_cut(&g, &p);
        let mut swapped = p.clone();
        for v in g.vertices() {
            let x = swapped.part(v);
            let y = match x {
                0 => 1,
                1 => 0,
                other => other,
            };
            swapped.set(v, y.min(k as u32 - 1));
        }
        if k >= 2 {
            assert_eq!(metrics::edge_cut(&g, &swapped), cut);
        }
    }
}

#[test]
fn multilevel_cut_never_worse_than_random() {
    for (g, k) in cases() {
        let ml = MultilevelPartitioner::default().partition(&g, k, 0);
        let rnd = RandomPartitioner.partition(&g, k, 0);
        assert!(
            metrics::edge_cut(&g, &ml) <= metrics::edge_cut(&g, &rnd),
            "multilevel {} worse than random {}",
            metrics::edge_cut(&g, &ml),
            metrics::edge_cut(&g, &rnd)
        );
    }
}
