//! Property-style tests over the partitioning stack: every strategy, on
//! a deterministic sweep of synthetic circuits, must produce structurally
//! valid, reasonably balanced partitions; refinement must never increase
//! the cut; the multilevel invariants of the paper's §3 must hold for
//! every input. (The offline build has no proptest, so the cases are
//! enumerated with an explicit PRNG.)

use parlogsim::partition::multilevel::coarsen::{coarsen, CoarsenConfig};
use parlogsim::partition::multilevel::refine::{greedy_refine, GreedyConfig};
use parlogsim::prelude::*;

/// splitmix64 — drives the case sweeps deterministically.
fn mix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// 48 deterministic (circuit, k) cases in the original proptest ranges.
fn cases() -> Vec<(CircuitGraph, usize)> {
    let mut s = 0x9A27_u64;
    (0..48)
        .map(|_| {
            let gates = (30 + mix(&mut s) % 370) as usize;
            let seed = mix(&mut s) % 1000;
            let k = (2 + mix(&mut s) % 7) as usize;
            let netlist = IscasSynth::small(gates, seed).build();
            (CircuitGraph::from_netlist(&netlist), k)
        })
        .collect()
}

#[test]
fn every_strategy_yields_valid_partitions() {
    for (g, k) in cases() {
        for strategy in all_partitioners() {
            let p = strategy.partition(&g, k, 7);
            assert!(p.is_valid_for(&g), "{} invalid", strategy.name());
            assert_eq!(p.k, k);
            // No empty partitions on circuits with >= 4k gates.
            if g.len() >= 4 * k {
                assert!(
                    p.sizes().iter().all(|&s| s > 0),
                    "{} produced an empty partition",
                    strategy.name()
                );
            }
        }
    }
}

#[test]
fn balanced_strategies_respect_balance() {
    for (g, k) in cases() {
        // Random and Multilevel both advertise load balance.
        let slack = 1.0 + 16.0 / (g.len() as f64 / k as f64); // integer rounding allowance
        let p = RandomPartitioner.partition(&g, k, 3);
        assert!(metrics::imbalance(&g, &p) <= slack.max(1.05));
        let p = MultilevelPartitioner::default().partition(&g, k, 3);
        assert!(
            metrics::imbalance(&g, &p) <= slack.max(1.06),
            "multilevel imbalance {}",
            metrics::imbalance(&g, &p)
        );
    }
}

#[test]
fn greedy_refinement_never_increases_cut() {
    let mut s = 0x6EF1_u64;
    for (g, k) in cases() {
        let seed = mix(&mut s) % 50;
        let mut p = RandomPartitioner.partition(&g, k, seed);
        let before = metrics::edge_cut(&g, &p);
        let stats = greedy_refine(&g, &mut p, &GreedyConfig::default(), seed);
        assert!(stats.cut_after <= before);
        assert_eq!(stats.cut_after, metrics::edge_cut(&g, &p));
        assert!(p.is_valid_for(&g));
    }
}

#[test]
fn coarsening_invariants_hold() {
    for (g, k) in cases() {
        // Paper §3: globules are disjoint and cover V; total weight is
        // invariant; input globules never combine; the graph shrinks.
        let levels = coarsen(&g, &CoarsenConfig::for_k(k));
        let mut fine = g.clone();
        for level in &levels {
            assert_eq!(level.map.len(), fine.len());
            assert!(level.graph.len() < fine.len());
            assert_eq!(level.graph.total_weight(), g.total_weight());
            let mut weight_check = vec![0u64; level.graph.len()];
            let mut inputs_in = vec![0usize; level.graph.len()];
            for v in fine.vertices() {
                let c = level.map[v as usize] as usize;
                assert!(c < level.graph.len());
                weight_check[c] += fine.vweight(v);
                if fine.is_input(v) {
                    inputs_in[c] += 1;
                }
            }
            for c in level.graph.vertices() {
                assert_eq!(weight_check[c as usize], level.graph.vweight(c));
                assert!(inputs_in[c as usize] <= 1, "input globules combined");
            }
            fine = level.graph.clone();
        }
    }
}

#[test]
fn projection_preserves_partition_semantics() {
    for (g, k) in cases() {
        // ∀ v ∈ V_ij : P[v] = P[V_ij] — projecting a coarse partition must
        // give every fine vertex its globule's partition.
        let levels = coarsen(&g, &CoarsenConfig::for_k(k));
        if levels.is_empty() {
            continue;
        }
        let coarsest = &levels.last().unwrap().graph;
        let coarse_p = RandomPartitioner.partition(coarsest, k, 1);
        // Project down through every level.
        let mut p = coarse_p.clone();
        for level in levels.iter().rev() {
            let finer = p.project(&level.map);
            for (v, &c) in level.map.iter().enumerate() {
                assert_eq!(finer.assignment[v], p.assignment[c as usize]);
            }
            p = finer;
        }
        assert!(p.is_valid_for(&g));
    }
}

#[test]
fn cut_metric_is_symmetric_in_relabeling() {
    for (g, k) in cases() {
        // Swapping two partition labels cannot change the cut.
        let p = DfsPartitioner.partition(&g, k, 0);
        let cut = metrics::edge_cut(&g, &p);
        let mut swapped = p.clone();
        for v in g.vertices() {
            let x = swapped.part(v);
            let y = match x {
                0 => 1,
                1 => 0,
                other => other,
            };
            swapped.set(v, y.min(k as u32 - 1));
        }
        if k >= 2 {
            assert_eq!(metrics::edge_cut(&g, &swapped), cut);
        }
    }
}

#[test]
fn multilevel_cut_never_worse_than_random() {
    for (g, k) in cases() {
        let ml = MultilevelPartitioner::default().partition(&g, k, 0);
        let rnd = RandomPartitioner.partition(&g, k, 0);
        assert!(
            metrics::edge_cut(&g, &ml) <= metrics::edge_cut(&g, &rnd),
            "multilevel {} worse than random {}",
            metrics::edge_cut(&g, &ml),
            metrics::edge_cut(&g, &rnd)
        );
    }
}

#[test]
fn hyperedge_metrics_satisfy_universal_bounds() {
    // For every circuit, strategy and k the hypergraph metrics must obey
    // their defining inequalities: 0 ≤ cut_nets ≤ connectivity_cut (each
    // cut net contributes λ−1 ≥ 1), connectivity_cut ≤ edge_cut (a net
    // reaching an external part has ≥ 1 crossing pin there, and pin
    // weights are ≥ 1), connectivity_cut ≤ (k−1)·cut_nets (λ ≤ k), and
    // Σ external_degree = Σ_{cut nets} λ = connectivity_cut + cut_nets.
    for (g, k) in cases() {
        for strategy in all_partitioners() {
            let p = strategy.partition(&g, k, 11);
            let cc = metrics::connectivity_cut(&g, &p);
            let ec = metrics::edge_cut(&g, &p);
            let nets = metrics::cut_nets(&g, &p);
            assert!(nets <= cc, "{}: cut_nets {nets} > λ−1 cut {cc}", strategy.name());
            assert!(cc <= ec, "{}: λ−1 cut {cc} > edge cut {ec}", strategy.name());
            assert!(cc <= nets * (k as u64 - 1), "{}: λ exceeds k", strategy.name());
            let ext: u64 = metrics::external_degree(&g, &p).iter().sum();
            assert_eq!(ext, cc + nets, "{}: external degree identity", strategy.name());
            assert_eq!(cc == 0, nets == 0);
        }
        // λ−1 of the trivial one-part-holds-all partitioning is exactly 0.
        let solo = Partitioning::new(k, vec![0; g.len()]);
        assert_eq!(metrics::connectivity_cut(&g, &solo), 0);
        assert_eq!(metrics::cut_nets(&g, &solo), 0);
    }
}

#[test]
fn connectivity_cut_equals_edge_cut_on_fanout_one_nets() {
    // On circuits where every driver net has exactly one (unit-weight)
    // reader pin, a net touches at most two parts, so λ−1 per net equals
    // its crossing pin weight and the two cut metrics coincide for every
    // assignment. Sweep arbitrary chain forests and assignments.
    use parlogsim::partition::graph::VertexId;
    let mut s = 0x1F0C_u64;
    for _ in 0..24 {
        let n = (8 + mix(&mut s) % 120) as usize;
        let chains = 1 + (mix(&mut s) % 5) as usize;
        let k = (2 + mix(&mut s) % 6) as usize;
        // Vertex v > 0 extends the chain of vertex v - chains (stride
        // layout): every vertex drives at most one reader.
        let mut fanout: Vec<Vec<(VertexId, u64)>> = vec![Vec::new(); n];
        for v in chains..n {
            fanout[v - chains].push((v as VertexId, 1));
        }
        let mut is_input = vec![false; n];
        for i in is_input.iter_mut().take(chains.min(n)) {
            *i = true;
        }
        let g = CircuitGraph::from_parts("forest".into(), vec![1; n], fanout, is_input);
        for round in 0..4u64 {
            let asg: Vec<u32> = (0..n)
                .map(|v| {
                    let h = (v as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(round * 77 + mix(&mut s));
                    (h % k as u64) as u32
                })
                .collect();
            let p = Partitioning::new(k, asg);
            assert_eq!(metrics::connectivity_cut(&g, &p), metrics::edge_cut(&g, &p));
        }
    }
}

#[test]
fn connectivity_cut_is_monotone_under_part_merges() {
    // Merging two parts (relabel every b-vertex to a) can only remove
    // parts from each net's span: λ per net — and so the λ−1 cut, the
    // cut-net count and the edge cut — must never increase. Iterating
    // merges down to one part must reach exactly zero.
    let mut s = 0x4D45_u64;
    for (g, k) in cases() {
        let mut p = RandomPartitioner.partition(&g, k, mix(&mut s) % 64);
        let mut cc = metrics::connectivity_cut(&g, &p);
        let mut nets = metrics::cut_nets(&g, &p);
        let mut ec = metrics::edge_cut(&g, &p);
        for b in (1..k as u32).rev() {
            let a = (mix(&mut s) % b as u64) as u32; // merge b into some a < b
            for v in g.vertices() {
                if p.part(v) == b {
                    p.set(v, a);
                }
            }
            let (cc2, nets2, ec2) = (
                metrics::connectivity_cut(&g, &p),
                metrics::cut_nets(&g, &p),
                metrics::edge_cut(&g, &p),
            );
            assert!(cc2 <= cc, "λ−1 cut grew on merge: {cc} -> {cc2}");
            assert!(nets2 <= nets, "cut nets grew on merge");
            assert!(ec2 <= ec, "edge cut grew on merge");
            (cc, nets, ec) = (cc2, nets2, ec2);
        }
        assert_eq!(cc, 0, "single surviving part must have zero λ−1 cut");
        assert_eq!(nets, 0);
        assert_eq!(ec, 0);
    }
}

#[test]
fn replication_plans_never_increase_the_cut() {
    // For arbitrary circuits/partitionings and budgets, the planner's
    // post-replication cut is ≤ the plain edge cut, the estimate is the
    // exact difference, the empty plan is the identity, and no replica
    // targets its own home part or a non-replicable vertex.
    use parlogsim::partition::replicate::replicated_edge_cut;
    let mut s = 0x5EED_u64;
    for (g, k) in cases() {
        let p = RandomPartitioner.partition(&g, k, mix(&mut s) % 32);
        let base = metrics::edge_cut(&g, &p);
        assert_eq!(replicated_edge_cut(&g, &p, &ReplicaPlan::default()), base);
        for cfg in [
            ReplicationConfig::default(),
            ReplicationConfig {
                budget_per_part: 16 + mix(&mut s) % 200,
                min_fanout: 1,
                max_fanin: 5,
                gate_cost: (mix(&mut s) % 3) as i64,
                passes: 1 + (mix(&mut s) % 3) as usize,
            },
        ] {
            let plan = plan_replication(&g, &p, &cfg);
            let after = replicated_edge_cut(&g, &p, &plan);
            assert!(after <= base, "plan increased cut {base} -> {after}");
            assert_eq!(plan.est_messages_saved, base - after);
            for r in &plan.replicas {
                assert!(g.is_replicable(r.gate));
                assert_ne!(p.part(r.gate), r.part, "replica in its home part");
                assert!((r.part as usize) < k);
            }
        }
    }
}
