//! Property-based tests over the partitioning stack: every strategy, on
//! arbitrary synthetic circuits, must produce structurally valid,
//! reasonably balanced partitions; refinement must never increase the
//! cut; the multilevel invariants of the paper's §3 must hold for every
//! input.

use proptest::prelude::*;

use parlogsim::partition::multilevel::coarsen::{coarsen, CoarsenConfig};
use parlogsim::partition::multilevel::refine::{greedy_refine, GreedyConfig};
use parlogsim::prelude::*;

/// Strategy: a random small circuit (by size and seed) plus a k.
fn circuit_and_k() -> impl Strategy<Value = (CircuitGraph, usize)> {
    (30usize..400, 0u64..1000, 2usize..9).prop_map(|(gates, seed, k)| {
        let netlist = IscasSynth::small(gates, seed).build();
        (CircuitGraph::from_netlist(&netlist), k)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_strategy_yields_valid_partitions((g, k) in circuit_and_k()) {
        for strategy in all_partitioners() {
            let p = strategy.partition(&g, k, 7);
            prop_assert!(p.is_valid_for(&g), "{} invalid", strategy.name());
            prop_assert_eq!(p.k, k);
            // No empty partitions on circuits with >= 4k gates.
            if g.len() >= 4 * k {
                prop_assert!(
                    p.sizes().iter().all(|&s| s > 0),
                    "{} produced an empty partition", strategy.name()
                );
            }
        }
    }

    #[test]
    fn balanced_strategies_respect_balance((g, k) in circuit_and_k()) {
        // Random and Multilevel both advertise load balance.
        let slack = 1.0 + 16.0 / (g.len() as f64 / k as f64); // integer rounding allowance
        let p = RandomPartitioner.partition(&g, k, 3);
        prop_assert!(metrics::imbalance(&g, &p) <= slack.max(1.05));
        let p = MultilevelPartitioner::default().partition(&g, k, 3);
        prop_assert!(metrics::imbalance(&g, &p) <= slack.max(1.06),
            "multilevel imbalance {}", metrics::imbalance(&g, &p));
    }

    #[test]
    fn greedy_refinement_never_increases_cut((g, k) in circuit_and_k(), seed in 0u64..50) {
        let mut p = RandomPartitioner.partition(&g, k, seed);
        let before = metrics::edge_cut(&g, &p);
        let stats = greedy_refine(&g, &mut p, &GreedyConfig::default(), seed);
        prop_assert!(stats.cut_after <= before);
        prop_assert_eq!(stats.cut_after, metrics::edge_cut(&g, &p));
        prop_assert!(p.is_valid_for(&g));
    }

    #[test]
    fn coarsening_invariants_hold((g, k) in circuit_and_k()) {
        // Paper §3: globules are disjoint and cover V; total weight is
        // invariant; input globules never combine; the graph shrinks.
        let levels = coarsen(&g, &CoarsenConfig::for_k(k));
        let mut fine = g.clone();
        for level in &levels {
            prop_assert_eq!(level.map.len(), fine.len());
            prop_assert!(level.graph.len() < fine.len());
            prop_assert_eq!(level.graph.total_weight(), g.total_weight());
            let mut weight_check = vec![0u64; level.graph.len()];
            let mut inputs_in = vec![0usize; level.graph.len()];
            for v in fine.vertices() {
                let c = level.map[v as usize] as usize;
                prop_assert!(c < level.graph.len());
                weight_check[c] += fine.vweight(v);
                if fine.is_input(v) {
                    inputs_in[c] += 1;
                }
            }
            for c in level.graph.vertices() {
                prop_assert_eq!(weight_check[c as usize], level.graph.vweight(c));
                prop_assert!(inputs_in[c as usize] <= 1, "input globules combined");
            }
            fine = level.graph.clone();
        }
    }

    #[test]
    fn projection_preserves_partition_semantics((g, k) in circuit_and_k()) {
        // ∀ v ∈ V_ij : P[v] = P[V_ij] — projecting a coarse partition must
        // give every fine vertex its globule's partition.
        let levels = coarsen(&g, &CoarsenConfig::for_k(k));
        prop_assume!(!levels.is_empty());
        let coarsest = &levels.last().unwrap().graph;
        let coarse_p = RandomPartitioner.partition(coarsest, k, 1);
        // Project down through every level.
        let mut p = coarse_p.clone();
        for level in levels.iter().rev() {
            let finer = p.project(&level.map);
            for (v, &c) in level.map.iter().enumerate() {
                prop_assert_eq!(finer.assignment[v], p.assignment[c as usize]);
            }
            p = finer;
        }
        prop_assert!(p.is_valid_for(&g));
    }

    #[test]
    fn cut_metric_is_symmetric_in_relabeling((g, k) in circuit_and_k()) {
        // Swapping two partition labels cannot change the cut.
        let p = DfsPartitioner.partition(&g, k, 0);
        let cut = metrics::edge_cut(&g, &p);
        let mut swapped = p.clone();
        for v in g.vertices() {
            let x = swapped.part(v);
            let y = match x {
                0 => 1,
                1 => 0,
                other => other,
            };
            swapped.set(v, y.min(k as u32 - 1));
        }
        if k >= 2 {
            prop_assert_eq!(metrics::edge_cut(&g, &swapped), cut);
        }
    }

    #[test]
    fn multilevel_cut_never_worse_than_random((g, k) in circuit_and_k()) {
        let ml = MultilevelPartitioner::default().partition(&g, k, 0);
        let rnd = RandomPartitioner.partition(&g, k, 0);
        prop_assert!(
            metrics::edge_cut(&g, &ml) <= metrics::edge_cut(&g, &rnd),
            "multilevel {} worse than random {}",
            metrics::edge_cut(&g, &ml),
            metrics::edge_cut(&g, &rnd)
        );
    }
}
