//! Telemetry invariants at the workspace level:
//!
//! 1. **Non-perturbation** — attaching the recording [`TimeSeries`] probe
//!    must not change a single committed result or kernel statistic on any
//!    of the three executives (the probe observes the protocol, it never
//!    participates in it).
//! 2. **Conservation** — summing any additive counter over the buckets of
//!    a recorded series equals the run's aggregate [`KernelStats`] value:
//!    the series is a lossless decomposition of the aggregates by virtual
//!    time. (On the threaded executive `gvt_rounds` is excluded: every
//!    cluster participates in every synchronized round, so the aggregate
//!    keeps the max across clusters while the series sums all callbacks.)
//! 3. **Determinism** — the merged series of a threaded run is identical
//!    across repeated runs despite thread interleaving.
//!
//! [`TimeSeries`]: parlogsim::timewarp::TimeSeries
//! [`KernelStats`]: parlogsim::timewarp::KernelStats

use parlogsim::prelude::*;
use parlogsim::timewarp::Bucket;

const BUCKET: u64 = 25;

fn circuits() -> Vec<Netlist> {
    vec![parlogsim::netlist::data::s27(), parlogsim::netlist::data::c17()]
}

fn assignment(n: usize, k: usize) -> Vec<u32> {
    (0..n).map(|i| (i % k) as u32).collect()
}

/// Assert every additive series counter reconciles with the aggregate.
fn assert_conserved(totals: &Bucket, stats: &KernelStats, sum_gvt_rounds: bool, tag: &str) {
    assert_eq!(totals.batches, stats.batches_executed, "{tag}: batches");
    assert_eq!(totals.events, stats.events_processed, "{tag}: events");
    assert_eq!(totals.primary_rollbacks, stats.primary_rollbacks, "{tag}: primary");
    assert_eq!(totals.secondary_rollbacks, stats.secondary_rollbacks, "{tag}: secondary");
    assert_eq!(totals.events_rolled_back, stats.events_rolled_back, "{tag}: rolled back");
    assert_eq!(totals.events_coasted, stats.events_coasted, "{tag}: coasted");
    assert_eq!(totals.antis_sent, stats.antis_sent, "{tag}: antis");
    assert_eq!(totals.annihilations, stats.annihilated_pending, "{tag}: annihilations");
    assert_eq!(totals.states_saved, stats.states_saved, "{tag}: states saved");
    assert_eq!(totals.events_committed, stats.events_committed, "{tag}: committed");
    assert_eq!(totals.app_messages, stats.app_messages, "{tag}: app messages");
    assert_eq!(totals.remote_antis, stats.anti_messages_remote, "{tag}: remote antis");
    assert_eq!(totals.block_activations, stats.block_activations, "{tag}: block activations");
    assert_eq!(totals.ops_executed, stats.ops_executed, "{tag}: ops executed");
    if sum_gvt_rounds {
        assert_eq!(totals.gvt_rounds, stats.gvt_rounds, "{tag}: gvt rounds");
    }
}

#[test]
fn recording_probe_does_not_perturb_sequential() {
    for netlist in circuits() {
        let cfg = SimConfig { end_time: 300, ..Default::default() };
        let app = cfg.build_app(&netlist);
        let plain = Simulator::new(&app).run(Backend::Sequential).unwrap();
        let recorded = Simulator::new(&app).record(BUCKET).run(Backend::Sequential).unwrap();
        assert_eq!(app.fingerprint(&recorded.states), app.fingerprint(&plain.states));
        assert_eq!(recorded.stats, plain.stats);
        let ts = recorded.telemetry.expect("recording was on");
        assert_conserved(&ts.totals(), &recorded.stats, true, netlist.name());
    }
}

#[test]
fn recording_probe_does_not_perturb_platform() {
    for netlist in circuits() {
        let cfg = SimConfig { end_time: 300, ..Default::default() };
        let app = cfg.build_app(&netlist);
        for nodes in [2, 4] {
            let asg = assignment(netlist.len(), nodes);
            let backend = Backend::Platform { assignment: &asg, nodes };
            let plain = Simulator::new(&app).run(backend).unwrap();
            let recorded = Simulator::new(&app).record(BUCKET).run(backend).unwrap();
            assert_eq!(
                app.fingerprint(&recorded.states),
                app.fingerprint(&plain.states),
                "{} on {nodes} nodes",
                netlist.name()
            );
            assert_eq!(recorded.stats, plain.stats);
            assert_eq!(recorded.outcome, plain.outcome, "modeled time must not move");
            let ts = recorded.telemetry.expect("recording was on");
            assert_conserved(&ts.totals(), &recorded.stats, true, netlist.name());
        }
    }
}

#[test]
fn recording_probe_does_not_perturb_threaded() {
    // Real threads race, so speculative-work counters (rollbacks, antis)
    // legitimately vary run to run; the executive's guarantee — and what
    // the probe must not disturb — is the committed history.
    for netlist in circuits() {
        let cfg = SimConfig { end_time: 300, ..Default::default() };
        let app = cfg.build_app(&netlist);
        let asg = assignment(netlist.len(), 2);
        let backend = Backend::Threaded { assignment: &asg, clusters: 2 };
        let plain = Simulator::new(&app).run(backend).unwrap();
        let recorded = Simulator::new(&app).record(BUCKET).run(backend).unwrap();
        assert_eq!(app.fingerprint(&recorded.states), app.fingerprint(&plain.states));
        assert_eq!(recorded.stats.events_committed, plain.stats.events_committed);
        let ts = recorded.telemetry.expect("recording was on");
        assert_conserved(&ts.totals(), &recorded.stats, false, netlist.name());
    }
}

#[test]
fn bucket_sums_match_aggregates_across_configs() {
    // Sweep cancellation × checkpointing on a livelier circuit so the
    // rollback/anti/coast counters are actually exercised.
    let netlist = IscasSynth::small(200, 3).build();
    let graph = CircuitGraph::from_netlist(&netlist);
    let part = MultilevelPartitioner::default().partition(&graph, 4, 0);
    for (cancellation, checkpoint) in [
        (Cancellation::Aggressive, 1),
        (Cancellation::Aggressive, 4),
        (Cancellation::Lazy, 1),
        (Cancellation::Lazy, 3),
    ] {
        let mut cfg = SimConfig { end_time: 200, ..Default::default() };
        cfg.platform.kernel.cancellation = cancellation;
        cfg.platform.kernel.checkpoint_interval = checkpoint;
        let app = cfg.build_app(&netlist);
        let res = Simulator::new(&app)
            .platform_config(&cfg.platform)
            .record(BUCKET)
            .run(Backend::Platform { assignment: &part.assignment, nodes: 4 })
            .unwrap();
        let ts = res.telemetry.expect("recording was on");
        let tag = format!("{cancellation:?}/ckpt{checkpoint}");
        assert_conserved(&ts.totals(), &res.stats, true, &tag);
        assert!(ts.totals().rollbacks() > 0 || res.stats.rollbacks() == 0);
    }
}

#[test]
fn compiled_app_work_counters_reconcile_across_executives() {
    // The compiled engine's per-activation work (block activations, ops
    // swept) must decompose losslessly into virtual-time buckets on every
    // executive, and committed work must be executive-independent.
    let netlist = IscasSynth::small(200, 3).build();
    let graph = CircuitGraph::from_netlist(&netlist);
    let part = MultilevelPartitioner::default().partition(&graph, 4, 0);
    let mut cfg = SimConfig { end_time: 200, ..Default::default() };
    cfg.exec = ExecModel::CompiledBlocks(CompileOptions { blocks: Some(part.assignment.clone()) });
    let app = cfg.build_app(&netlist);

    let seq = Simulator::new(&app).record(BUCKET).run(Backend::Sequential).unwrap();
    assert!(seq.stats.block_activations > 0, "compiled run must activate blocks");
    assert!(seq.stats.ops_executed >= seq.stats.block_activations);
    assert_conserved(&seq.telemetry.as_ref().unwrap().totals(), &seq.stats, true, "seq/compiled");

    let asg = app.lp_assignment(&part.assignment);
    let plat = Simulator::new(&app)
        .platform_config(&cfg.platform)
        .record(BUCKET)
        .run(Backend::Platform { assignment: &asg, nodes: 4 })
        .unwrap();
    assert_conserved(
        &plat.telemetry.as_ref().unwrap().totals(),
        &plat.stats,
        true,
        "platform/compiled",
    );
    // Speculative activations can exceed the sequential count, never
    // undercut it.
    assert!(plat.stats.block_activations >= seq.stats.block_activations);
    assert_eq!(app.fingerprint(&plat.states), app.fingerprint(&seq.states));
}

#[test]
fn threaded_series_merge_is_deterministic() {
    // A 100%-local PHOLD has zero inter-LP traffic, so every LP's
    // execution is independent of thread scheduling: all execution-side
    // counters are deterministic, and any run-to-run difference could only
    // come from the per-cluster fork/join merge depending on interleaving.
    // (Commit and GVT-round bucketing follow the GVT values of the
    // synchronized rounds, which ARE timing-dependent — those columns and
    // the high-water/wall samples are excluded; their totals still
    // reconcile via `assert_conserved` in the other tests.)
    let model = parlogsim::timewarp::Phold {
        lps: 24,
        horizon: 400,
        locality_pct: 100,
        ..Default::default()
    };
    let asg = assignment(model.lps, 3);
    let backend = Backend::Threaded { assignment: &asg, clusters: 3 };
    let run = || {
        Simulator::new(&model)
            .record(BUCKET)
            .run(backend)
            .unwrap()
            .telemetry
            .expect("recording was on")
    };
    let a = run();
    let b = run();
    let execution_side = |ts: &TimeSeries| -> Vec<(parlogsim::timewarp::BucketKey, Bucket)> {
        ts.buckets()
            .map(|(k, bk)| {
                let mut bk = *bk;
                bk.events_committed = 0;
                bk.gvt_rounds = 0;
                bk.states_held_max = 0;
                bk.pending_max = 0;
                bk.wall_ns_max = 0;
                (k, bk)
            })
            .filter(|(_, bk)| *bk != Bucket::default())
            .collect()
    };
    assert_eq!(execution_side(&a), execution_side(&b));
    assert!(a.totals().events > 0);
    assert_eq!(a.totals().events_committed, b.totals().events_committed);
    assert_eq!(a.totals().app_messages, 0, "locality 100% must stay local");
}

#[test]
fn exported_series_row_counts_match() {
    let netlist = parlogsim::netlist::data::s27();
    let cfg = SimConfig { end_time: 300, ..Default::default() };
    let app = cfg.build_app(&netlist);
    let asg = assignment(netlist.len(), 2);
    let res = Simulator::new(&app)
        .record(BUCKET)
        .run(Backend::Platform { assignment: &asg, nodes: 2 })
        .unwrap();
    let ts = res.telemetry.expect("recording was on");
    assert!(!ts.is_empty());
    assert_eq!(ts.to_jsonl().lines().count(), ts.len());
    assert_eq!(ts.to_csv().lines().count(), ts.len() + 1);
}
